//! Golden-vector regression tests for the wire codecs.
//!
//! Every request and response tag has its byte encoding frozen here, at
//! every protocol version whose layout differs (v1–v6). If any of
//! these assertions fails, the change is a wire-format break: deployed
//! peers will misparse frames. Either revert the layout change or bump
//! [`PROTOCOL_VERSION`] and add *new* vectors while keeping the old
//! versions' vectors bit-identical.
//!
//! To regenerate after an intentional version bump:
//!
//! ```text
//! cargo test --test wire_golden regenerate -- --ignored --nocapture
//! ```

use accel::family::{ColoringSpec, FamilyKernel, FamilyResult, QuboSpec};
use accel::host::DispatchPolicy;
use accel::kernel::{CostReport, Kernel, KernelResult};
use runtime::stats::{BackendThroughput, LatencyHistogram, LATENCY_BUCKETS};
use runtime::RuntimeStats;
use wire::{
    decode_request_v, decode_response_v, encode_request_v, encode_response_v, write_frame,
    ErrorCode, GossipEntry, Request, Response, WireOutcome, PROTOCOL_VERSION,
};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    assert!(s.len().is_multiple_of(2), "odd-length hex string");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("valid hex"))
        .collect()
}

/// One fixed sample per request tag. Values are arbitrary but frozen:
/// changing them invalidates the golden vectors below.
fn sample_requests() -> Vec<(&'static str, Request)> {
    vec![
        (
            "hello",
            Request::Hello {
                min_version: 1,
                max_version: 3,
            },
        ),
        ("ping", Request::Ping { token: 0xDEAD_BEEF }),
        (
            "submit_plain",
            Request::Submit {
                request_id: 7,
                timeout_ms: Some(250),
                seed: Some(42),
                policy: None,
                kernel: Kernel::Factor { n: 77 },
            },
        ),
        (
            "submit_policy",
            Request::Submit {
                request_id: 8,
                timeout_ms: None,
                seed: None,
                policy: Some(DispatchPolicy::MinPredictedLatency),
                kernel: Kernel::Compare { x: 0.25, y: 0.75 },
            },
        ),
        ("cancel", Request::Cancel { request_id: 9 }),
        ("get_stats", Request::GetStats { request_id: 10 }),
        (
            "gossip",
            Request::Gossip {
                request_id: 11,
                origin: 2,
                entries: sample_gossip_entries(),
            },
        ),
        (
            "submit_coloring",
            Request::Submit {
                request_id: 12,
                timeout_ms: None,
                seed: Some(3),
                policy: None,
                kernel: Kernel::Family(FamilyKernel::Coloring(ColoringSpec {
                    n_vertices: 3,
                    n_colors: 2,
                    edges: vec![(0, 1), (1, 2)],
                })),
            },
        ),
        (
            "submit_qubo",
            Request::Submit {
                request_id: 13,
                timeout_ms: Some(500),
                seed: None,
                policy: None,
                kernel: Kernel::Family(FamilyKernel::Qubo(QuboSpec {
                    n_vars: 2,
                    linear: vec![(0, 1.0)],
                    quadratic: vec![(0, 1, -2.0)],
                })),
            },
        ),
    ]
}

/// Fixed shard-health entries shared by the gossip request/ack samples.
fn sample_gossip_entries() -> Vec<GossipEntry> {
    vec![
        GossipEntry {
            shard: 0,
            status: 0,
            failures: 0,
            epoch: 3,
        },
        GossipEntry {
            shard: 1,
            status: 2,
            failures: 4,
            epoch: 9,
        },
    ]
}

/// One fixed sample per response tag (plus one per outcome variant).
fn sample_responses() -> Vec<(&'static str, Response)> {
    let mut counts = [0u64; LATENCY_BUCKETS];
    counts[0] = 2;
    counts[3] = 1;
    let mut stats = RuntimeStats {
        submitted: 6,
        completed: 4,
        failed: 1,
        rejected: 0,
        invalid: 0,
        timed_out: 1,
        cancelled: 0,
        queue_depth: 2,
        workers: 3,
        latency: LatencyHistogram::from_counts(counts),
        backend_faults: 5,
        retries: 3,
        reroutes: 2,
        quarantine_events: 1,
        recovery_probes: 4,
        cache_hits: 9,
        cache_misses: 11,
        cache_evictions: 2,
        coalesced: 6,
        hedged: 5,
        hedge_cancelled: 3,
        ..RuntimeStats::default()
    };
    stats.per_backend.insert(
        "cpu".into(),
        BackendThroughput {
            jobs: 4,
            device_seconds: 0.5,
            operations: 128,
            busy_seconds: 0.25,
            predicted_device_seconds: 0.4,
            ewma_correction: 1.25,
            ewma_error: 0.125,
            faults: 5,
        },
    );
    vec![
        ("hello_ack", Response::HelloAck { version: 3 }),
        ("pong", Response::Pong { token: 0xDEAD_BEEF }),
        (
            "job_result_completed",
            Response::JobResult {
                request_id: 7,
                outcome: WireOutcome::Completed {
                    backend: "quantum".into(),
                    result: KernelResult::Factors(7, 11),
                    cost: CostReport {
                        device_seconds: 2e-6,
                        operations: 64,
                    },
                    wall_nanos: 1_234,
                },
            },
        ),
        (
            "job_result_failed",
            Response::JobResult {
                request_id: 8,
                outcome: WireOutcome::Failed("backend `quantum` permanent device fault".into()),
            },
        ),
        (
            "job_result_timed_out",
            Response::JobResult {
                request_id: 9,
                outcome: WireOutcome::TimedOut,
            },
        ),
        (
            "job_result_cancelled",
            Response::JobResult {
                request_id: 10,
                outcome: WireOutcome::Cancelled,
            },
        ),
        (
            "cancel_result",
            Response::CancelResult {
                request_id: 9,
                cancelled: true,
            },
        ),
        (
            "stats",
            Response::Stats {
                request_id: 10,
                stats,
            },
        ),
        (
            "error",
            Response::Error {
                request_id: 0,
                code: ErrorCode::Malformed,
                message: "bad frame".into(),
            },
        ),
        (
            "gossip_ack",
            Response::GossipAck {
                request_id: 11,
                entries: sample_gossip_entries(),
            },
        ),
        (
            "job_result_coloring",
            Response::JobResult {
                request_id: 12,
                outcome: WireOutcome::Completed {
                    backend: "oscillator".into(),
                    result: KernelResult::Family(FamilyResult::Coloring {
                        colors: vec![0, 1, 0],
                        conflicts: 0,
                    }),
                    cost: CostReport {
                        device_seconds: 5.6e-6,
                        operations: 3,
                    },
                    wall_nanos: 910,
                },
            },
        ),
        (
            "job_result_qubo",
            Response::JobResult {
                request_id: 13,
                outcome: WireOutcome::Completed {
                    backend: "memcomputing".into(),
                    result: KernelResult::Family(FamilyResult::Qubo {
                        bits: vec![true, false],
                        energy: -1.0,
                    }),
                    cost: CostReport {
                        device_seconds: 1.5e-7,
                        operations: 150,
                    },
                    wall_nanos: 1_100,
                },
            },
        ),
    ]
}

/// Versions whose payload layouts differ. v1 has no Submit policy byte
/// and no stats prediction triple; v2 adds both; v3 adds fault counters;
/// v4 adds the global admission counters; v5 adds the gossip frames;
/// v6 adds the generic family frames (kernel/result tag 5).
const VERSIONS: [u16; 6] = [1, 2, 3, 4, 5, 6];

/// Requests that cannot encode at a given version (by design).
fn request_encodable(name: &str, version: u16) -> bool {
    !(name == "submit_policy" && version < 2
        || name == "gossip" && version < 5
        || (name == "submit_coloring" || name == "submit_qubo") && version < 6)
}

/// Responses that cannot encode at a given version (by design).
fn response_encodable(name: &str, version: u16) -> bool {
    !(name == "gossip_ack" && version < 5
        || (name == "job_result_coloring" || name == "job_result_qubo") && version < 6)
}

// ---------------------------------------------------------------------
// Golden vectors. Regenerate with the ignored `regenerate` test below.
// ---------------------------------------------------------------------

const REQUEST_GOLDENS: &[(&str, u16, &str)] = &[
    ("hello", 1, "0100010003"),
    ("hello", 2, "0100010003"),
    ("hello", 3, "0100010003"),
    ("hello", 4, "0100010003"),
    ("hello", 5, "0100010003"),
    ("hello", 6, "0100010003"),
    ("ping", 1, "0200000000deadbeef"),
    ("ping", 2, "0200000000deadbeef"),
    ("ping", 3, "0200000000deadbeef"),
    ("ping", 4, "0200000000deadbeef"),
    ("ping", 5, "0200000000deadbeef"),
    ("ping", 6, "0200000000deadbeef"),
    ("submit_plain", 1, "0300000000000000070100000000000000fa01000000000000002a00000000000000004d"),
    ("submit_plain", 2, "0300000000000000070100000000000000fa01000000000000002a0000000000000000004d"),
    ("submit_plain", 3, "0300000000000000070100000000000000fa01000000000000002a0000000000000000004d"),
    ("submit_plain", 4, "0300000000000000070100000000000000fa01000000000000002a0000000000000000004d"),
    ("submit_plain", 5, "0300000000000000070100000000000000fa01000000000000002a0000000000000000004d"),
    ("submit_plain", 6, "0300000000000000070100000000000000fa01000000000000002a0000000000000000004d"),
    ("submit_policy", 2, "030000000000000008000003043fd00000000000003fe8000000000000"),
    ("submit_policy", 3, "030000000000000008000003043fd00000000000003fe8000000000000"),
    ("submit_policy", 4, "030000000000000008000003043fd00000000000003fe8000000000000"),
    ("submit_policy", 5, "030000000000000008000003043fd00000000000003fe8000000000000"),
    ("submit_policy", 6, "030000000000000008000003043fd00000000000003fe8000000000000"),
    ("cancel", 1, "040000000000000009"),
    ("cancel", 2, "040000000000000009"),
    ("cancel", 3, "040000000000000009"),
    ("cancel", 4, "040000000000000009"),
    ("cancel", 5, "040000000000000009"),
    ("cancel", 6, "040000000000000009"),
    ("get_stats", 1, "05000000000000000a"),
    ("get_stats", 2, "05000000000000000a"),
    ("get_stats", 3, "05000000000000000a"),
    ("get_stats", 4, "05000000000000000a"),
    ("get_stats", 5, "05000000000000000a"),
    ("get_stats", 6, "05000000000000000a"),
    ("gossip", 5, "06000000000000000b00000000000000020000000200000000000000000000000000000000030000000102000000040000000000000009"),
    ("gossip", 6, "06000000000000000b00000000000000020000000200000000000000000000000000000000030000000102000000040000000000000009"),
    ("submit_coloring", 6, "03000000000000000c00010000000000000003000500060000003400000000000000030000000000000002000000020000000000000000000000000000000100000000000000010000000000000002"),
    ("submit_qubo", 6, "03000000000000000d0100000000000001f400000500070000003800000000000000020000000100000000000000003ff00000000000000000000100000000000000000000000000000001c000000000000000"),
];
const RESPONSE_GOLDENS: &[(&str, u16, &str)] = &[
    ("hello_ack", 1, "810003"),
    ("hello_ack", 2, "810003"),
    ("hello_ack", 3, "810003"),
    ("hello_ack", 4, "810003"),
    ("hello_ack", 5, "810003"),
    ("hello_ack", 6, "810003"),
    ("pong", 1, "8200000000deadbeef"),
    ("pong", 2, "8200000000deadbeef"),
    ("pong", 3, "8200000000deadbeef"),
    ("pong", 4, "8200000000deadbeef"),
    ("pong", 5, "8200000000deadbeef"),
    ("pong", 6, "8200000000deadbeef"),
    ("job_result_completed", 1, "83000000000000000700000000077175616e74756d000000000000000007000000000000000b3ec0c6f7a0b5ed8d000000000000004000000000000004d2"),
    ("job_result_completed", 2, "83000000000000000700000000077175616e74756d000000000000000007000000000000000b3ec0c6f7a0b5ed8d000000000000004000000000000004d2"),
    ("job_result_completed", 3, "83000000000000000700000000077175616e74756d000000000000000007000000000000000b3ec0c6f7a0b5ed8d000000000000004000000000000004d2"),
    ("job_result_completed", 4, "83000000000000000700000000077175616e74756d000000000000000007000000000000000b3ec0c6f7a0b5ed8d000000000000004000000000000004d2"),
    ("job_result_completed", 5, "83000000000000000700000000077175616e74756d000000000000000007000000000000000b3ec0c6f7a0b5ed8d000000000000004000000000000004d2"),
    ("job_result_completed", 6, "83000000000000000700000000077175616e74756d000000000000000007000000000000000b3ec0c6f7a0b5ed8d000000000000004000000000000004d2"),
    ("job_result_failed", 1, "83000000000000000801000000286261636b656e6420607175616e74756d60207065726d616e656e7420646576696365206661756c74"),
    ("job_result_failed", 2, "83000000000000000801000000286261636b656e6420607175616e74756d60207065726d616e656e7420646576696365206661756c74"),
    ("job_result_failed", 3, "83000000000000000801000000286261636b656e6420607175616e74756d60207065726d616e656e7420646576696365206661756c74"),
    ("job_result_failed", 4, "83000000000000000801000000286261636b656e6420607175616e74756d60207065726d616e656e7420646576696365206661756c74"),
    ("job_result_failed", 5, "83000000000000000801000000286261636b656e6420607175616e74756d60207065726d616e656e7420646576696365206661756c74"),
    ("job_result_failed", 6, "83000000000000000801000000286261636b656e6420607175616e74756d60207065726d616e656e7420646576696365206661756c74"),
    ("job_result_timed_out", 1, "83000000000000000902"),
    ("job_result_timed_out", 2, "83000000000000000902"),
    ("job_result_timed_out", 3, "83000000000000000902"),
    ("job_result_timed_out", 4, "83000000000000000902"),
    ("job_result_timed_out", 5, "83000000000000000902"),
    ("job_result_timed_out", 6, "83000000000000000902"),
    ("job_result_cancelled", 1, "83000000000000000a03"),
    ("job_result_cancelled", 2, "83000000000000000a03"),
    ("job_result_cancelled", 3, "83000000000000000a03"),
    ("job_result_cancelled", 4, "83000000000000000a03"),
    ("job_result_cancelled", 5, "83000000000000000a03"),
    ("job_result_cancelled", 6, "83000000000000000a03"),
    ("cancel_result", 1, "84000000000000000901"),
    ("cancel_result", 2, "84000000000000000901"),
    ("cancel_result", 3, "84000000000000000901"),
    ("cancel_result", 4, "84000000000000000901"),
    ("cancel_result", 5, "84000000000000000901"),
    ("cancel_result", 6, "84000000000000000901"),
    ("stats", 1, "85000000000000000a000000000000000600000000000000040000000000000001000000000000000000000000000000000000000000000001000000000000000000000000000000020000000000000003000000010000000363707500000000000000043fe000000000000000000000000000803fd00000000000000000000800000000000000020000000000000000000000000000000000000000000000010000000000000000000000000000000000000000000000000000000000000000"),
    ("stats", 2, "85000000000000000a000000000000000600000000000000040000000000000001000000000000000000000000000000000000000000000001000000000000000000000000000000020000000000000003000000010000000363707500000000000000043fe000000000000000000000000000803fd00000000000003fd999999999999a3ff40000000000003fc00000000000000000000800000000000000020000000000000000000000000000000000000000000000010000000000000000000000000000000000000000000000000000000000000000"),
    ("stats", 3, "85000000000000000a00000000000000060000000000000004000000000000000100000000000000000000000000000000000000000000000100000000000000000000000000000002000000000000000300000000000000050000000000000003000000000000000200000000000000010000000000000004000000010000000363707500000000000000043fe000000000000000000000000000803fd00000000000003fd999999999999a3ff40000000000003fc000000000000000000000000000050000000800000000000000020000000000000000000000000000000000000000000000010000000000000000000000000000000000000000000000000000000000000000"),
    ("stats", 4, "85000000000000000a000000000000000600000000000000040000000000000001000000000000000000000000000000000000000000000001000000000000000000000000000000020000000000000003000000000000000500000000000000030000000000000002000000000000000100000000000000040000000000000009000000000000000b0000000000000002000000000000000600000000000000050000000000000003000000010000000363707500000000000000043fe000000000000000000000000000803fd00000000000003fd999999999999a3ff40000000000003fc000000000000000000000000000050000000800000000000000020000000000000000000000000000000000000000000000010000000000000000000000000000000000000000000000000000000000000000"),
    ("stats", 5, "85000000000000000a000000000000000600000000000000040000000000000001000000000000000000000000000000000000000000000001000000000000000000000000000000020000000000000003000000000000000500000000000000030000000000000002000000000000000100000000000000040000000000000009000000000000000b0000000000000002000000000000000600000000000000050000000000000003000000010000000363707500000000000000043fe000000000000000000000000000803fd00000000000003fd999999999999a3ff40000000000003fc000000000000000000000000000050000000800000000000000020000000000000000000000000000000000000000000000010000000000000000000000000000000000000000000000000000000000000000"),
    ("stats", 6, "85000000000000000a000000000000000600000000000000040000000000000001000000000000000000000000000000000000000000000001000000000000000000000000000000020000000000000003000000000000000500000000000000030000000000000002000000000000000100000000000000040000000000000009000000000000000b0000000000000002000000000000000600000000000000050000000000000003000000010000000363707500000000000000043fe000000000000000000000000000803fd00000000000003fd999999999999a3ff40000000000003fc000000000000000000000000000050000000800000000000000020000000000000000000000000000000000000000000000010000000000000000000000000000000000000000000000000000000000000000"),
    ("error", 1, "8600000000000000000200000009626164206672616d65"),
    ("error", 2, "8600000000000000000200000009626164206672616d65"),
    ("error", 3, "8600000000000000000200000009626164206672616d65"),
    ("error", 4, "8600000000000000000200000009626164206672616d65"),
    ("error", 5, "8600000000000000000200000009626164206672616d65"),
    ("error", 6, "8600000000000000000200000009626164206672616d65"),
    ("gossip_ack", 5, "87000000000000000b0000000200000000000000000000000000000000030000000102000000040000000000000009"),
    ("gossip_ack", 6, "87000000000000000b0000000200000000000000000000000000000000030000000102000000040000000000000009"),
    ("job_result_coloring", 6, "83000000000000000c000000000a6f7363696c6c61746f72050006000000180000000300000000000000010000000000000000000000003ed77cf44765195f0000000000000003000000000000038e"),
    ("job_result_qubo", 6, "83000000000000000d000000000c6d656d636f6d707574696e670500070000000e000000020100bff00000000000003e8421f5f40d83760000000000000096000000000000044c"),
];
const FRAMED_PING_GOLDEN: &str = "5242434d000000090200000000deadbeef";
fn golden_for<'a>(table: &'a [(&str, u16, &str)], name: &str, version: u16) -> &'a str {
    table
        .iter()
        .find(|(n, v, _)| *n == name && *v == version)
        .unwrap_or_else(|| panic!("missing golden for {name} v{version}"))
        .2
}

#[test]
fn request_encodings_match_goldens() {
    for (name, request) in sample_requests() {
        for version in VERSIONS {
            if !request_encodable(name, version) {
                continue;
            }
            let bytes = encode_request_v(&request, version)
                .unwrap_or_else(|e| panic!("{name} v{version}: {e}"));
            assert_eq!(
                hex(&bytes),
                golden_for(REQUEST_GOLDENS, name, version),
                "{name} v{version}: encoding drifted — this is a wire-format break"
            );
        }
    }
}

#[test]
fn response_encodings_match_goldens() {
    for (name, response) in sample_responses() {
        for version in VERSIONS {
            if !response_encodable(name, version) {
                continue;
            }
            let bytes = encode_response_v(&response, version)
                .unwrap_or_else(|e| panic!("{name} v{version}: {e}"));
            assert_eq!(
                hex(&bytes),
                golden_for(RESPONSE_GOLDENS, name, version),
                "{name} v{version}: encoding drifted — this is a wire-format break"
            );
        }
    }
}

#[test]
fn goldens_decode_back_to_the_original_values() {
    for (name, request) in sample_requests() {
        for version in VERSIONS {
            if !request_encodable(name, version) {
                continue;
            }
            let bytes = unhex(golden_for(REQUEST_GOLDENS, name, version));
            let decoded = decode_request_v(&bytes, version)
                .unwrap_or_else(|e| panic!("{name} v{version}: {e}"));
            assert_eq!(decoded, request, "{name} v{version}");
        }
    }
    for (name, response) in sample_responses() {
        // Older versions drop fields by design (the decoder zero-fills),
        // so exact equality only holds at the current version.
        let bytes = unhex(golden_for(RESPONSE_GOLDENS, name, PROTOCOL_VERSION));
        let decoded =
            decode_response_v(&bytes, PROTOCOL_VERSION).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(decoded, response, "{name} v{PROTOCOL_VERSION}");
    }
}

#[test]
fn downlevel_stats_goldens_decode_with_zeroed_new_fields() {
    let (_, response) = sample_responses()
        .into_iter()
        .find(|(n, _)| *n == "stats")
        .unwrap();
    let Response::Stats { stats: full, .. } = &response else {
        unreachable!()
    };
    for version in [1u16, 2, 3] {
        let bytes = unhex(golden_for(RESPONSE_GOLDENS, "stats", version));
        let Response::Stats { stats, request_id } = decode_response_v(&bytes, version).unwrap()
        else {
            panic!("stats golden must decode to Stats at v{version}")
        };
        assert_eq!(request_id, 10);
        assert_eq!(stats.submitted, full.submitted);
        assert_eq!(stats.completed, full.completed);
        // v4 fields are zero-filled below v4.
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(stats.coalesced, 0);
        assert_eq!(stats.hedged, 0);
        if version >= 3 {
            assert_eq!(stats.backend_faults, full.backend_faults);
            assert_eq!(
                stats.per_backend["cpu"].faults,
                full.per_backend["cpu"].faults
            );
            continue;
        }
        // v3 fields are zero-filled below v3.
        assert_eq!(stats.backend_faults, 0);
        assert_eq!(stats.reroutes, 0);
        assert_eq!(stats.per_backend["cpu"].faults, 0);
        if version == 1 {
            // v2 fields are zero/default-filled below v2.
            assert_eq!(stats.per_backend["cpu"].predicted_device_seconds, 0.0);
            assert_eq!(stats.per_backend["cpu"].ewma_correction, 1.0);
        } else {
            assert_eq!(
                stats.per_backend["cpu"].predicted_device_seconds,
                full.per_backend["cpu"].predicted_device_seconds
            );
        }
    }
}

#[test]
fn framed_request_bytes_are_frozen() {
    let payload =
        encode_request_v(&Request::Ping { token: 0xDEAD_BEEF }, PROTOCOL_VERSION).unwrap();
    let mut framed = Vec::new();
    write_frame(&mut framed, &payload).unwrap();
    assert_eq!(
        hex(&framed),
        FRAMED_PING_GOLDEN,
        "frame header layout drifted — this is a wire-format break"
    );
}

/// Prints the full golden tables. Run after an *intentional* format
/// change, then paste the output over the constants above.
#[test]
#[ignore = "generator, not a check"]
fn regenerate() {
    println!("const REQUEST_GOLDENS: &[(&str, u16, &str)] = &[");
    for (name, request) in sample_requests() {
        for version in VERSIONS {
            if !request_encodable(name, version) {
                continue;
            }
            let bytes = encode_request_v(&request, version).unwrap();
            println!("    (\"{name}\", {version}, \"{}\"),", hex(&bytes));
        }
    }
    println!("];");
    println!("const RESPONSE_GOLDENS: &[(&str, u16, &str)] = &[");
    for (name, response) in sample_responses() {
        for version in VERSIONS {
            if !response_encodable(name, version) {
                continue;
            }
            let bytes = encode_response_v(&response, version).unwrap();
            println!("    (\"{name}\", {version}, \"{}\"),", hex(&bytes));
        }
    }
    println!("];");
    let payload =
        encode_request_v(&Request::Ping { token: 0xDEAD_BEEF }, PROTOCOL_VERSION).unwrap();
    let mut framed = Vec::new();
    write_frame(&mut framed, &payload).unwrap();
    println!("const FRAMED_PING_GOLDEN: &str = \"{}\";", hex(&framed));
}
