//! Wire-protocol robustness: seeded random round-trips over every
//! message shape, plus hostile-input tests — truncated frames, oversized
//! length prefixes, bad magic, wrong versions, and random byte fuzz.
//! The contract under test: malformed input always yields a `WireError`,
//! never a panic and never an attacker-sized allocation.

use accel::host::DispatchPolicy;
use accel::kernel::{CostReport, Kernel, KernelResult};
use mem::generators::{planted_3sat, random_ksat};
use numerics::rng::{rng_from_seed, Rng, StdRng};
use wire::{
    decode_kernel, decode_kernel_result, decode_request, decode_request_v, decode_response,
    encode_kernel, encode_kernel_result, encode_request, encode_request_v, encode_response,
    negotiate, read_frame, write_frame, ErrorCode, Request, Response, WireError, WireOutcome,
    MAGIC, MAX_FRAME_LEN, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};

const ROUNDS: usize = 64;

fn random_policy(rng: &mut StdRng) -> Option<DispatchPolicy> {
    match rng.gen_range(0..6u32) {
        0 => None,
        1 => Some(DispatchPolicy::PreferSpecialized),
        2 => Some(DispatchPolicy::CpuOnly),
        3 => Some(DispatchPolicy::MinPredictedLatency),
        4 => Some(DispatchPolicy::MinPredictedEnergy),
        _ => Some(DispatchPolicy::DeadlineAware),
    }
}

fn random_string(rng: &mut StdRng, max_len: usize) -> String {
    let alphabet = ['A', 'C', 'G', 'T', 'x', '\u{00e9}', '\u{2264}'];
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

fn random_kernel(rng: &mut StdRng) -> Kernel {
    match rng.gen_range(0..5u32) {
        0 => Kernel::Factor {
            n: rng.gen::<u64>(),
        },
        1 => {
            let n_qubits = rng.gen_range(1..12usize);
            let marked = (0..rng.gen_range(0..6usize))
                .map(|_| rng.gen_range(0..(1usize << n_qubits)))
                .collect();
            Kernel::Search { n_qubits, marked }
        }
        2 => Kernel::DnaSimilarity {
            a: random_string(rng, 20),
            b: random_string(rng, 20),
            k: rng.gen_range(1..4usize),
        },
        3 => {
            let formula = random_ksat(rng.gen_range(3..10usize), 3, 3.0, rng.gen::<u64>())
                .expect("generator parameters are valid");
            Kernel::SolveSat { formula }
        }
        _ => Kernel::Compare {
            x: rng.gen_range(0.0..1.0),
            y: rng.gen_range(0.0..1.0),
        },
    }
}

fn random_result(rng: &mut StdRng) -> KernelResult {
    match rng.gen_range(0..5u32) {
        0 => KernelResult::Factors(rng.gen::<u64>(), rng.gen::<u64>()),
        1 => KernelResult::Found(rng.gen_range(0..1_000_000usize)),
        2 => KernelResult::Similarity(rng.gen_range(0.0..1.0)),
        3 => {
            let bits = (0..rng.gen_range(0..24usize))
                .map(|_| rng.gen_range(0..2u32) == 1)
                .collect();
            KernelResult::SatSolution(if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(bits)
            })
        }
        _ => KernelResult::Distance(rng.gen_range(0.0..1.0)),
    }
}

fn random_outcome(rng: &mut StdRng) -> WireOutcome {
    match rng.gen_range(0..4u32) {
        0 => WireOutcome::Completed {
            backend: random_string(rng, 12),
            result: random_result(rng),
            cost: CostReport {
                device_seconds: rng.gen_range(0.0..1.0),
                operations: rng.gen::<u64>(),
            },
            wall_nanos: rng.gen::<u64>(),
        },
        1 => WireOutcome::Failed(random_string(rng, 40)),
        2 => WireOutcome::TimedOut,
        _ => WireOutcome::Cancelled,
    }
}

#[test]
fn random_kernels_round_trip() {
    let mut rng = rng_from_seed(0xABCD_0001);
    for round in 0..ROUNDS {
        let kernel = random_kernel(&mut rng);
        let bytes = encode_kernel(&kernel).expect("encode");
        let back = decode_kernel(&bytes).unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_eq!(back, kernel, "round {round}");
    }
}

#[test]
fn random_results_round_trip() {
    let mut rng = rng_from_seed(0xABCD_0002);
    for round in 0..ROUNDS {
        let result = random_result(&mut rng);
        let bytes = encode_kernel_result(&result).expect("encode");
        let back = decode_kernel_result(&bytes).unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_eq!(back, result, "round {round}");
    }
}

#[test]
fn random_requests_round_trip() {
    let mut rng = rng_from_seed(0xABCD_0003);
    for round in 0..ROUNDS {
        let request = match rng.gen_range(0..5u32) {
            0 => Request::Hello {
                min_version: rng.gen_range(0..10u64) as u16,
                max_version: rng.gen_range(0..10u64) as u16,
            },
            1 => Request::Ping {
                token: rng.gen::<u64>(),
            },
            2 => Request::Submit {
                request_id: rng.gen::<u64>(),
                timeout_ms: if rng.gen_range(0..2u32) == 0 {
                    None
                } else {
                    Some(rng.gen::<u64>())
                },
                seed: if rng.gen_range(0..2u32) == 0 {
                    None
                } else {
                    Some(rng.gen::<u64>())
                },
                policy: random_policy(&mut rng),
                kernel: random_kernel(&mut rng),
            },
            3 => Request::Cancel {
                request_id: rng.gen::<u64>(),
            },
            _ => Request::GetStats {
                request_id: rng.gen::<u64>(),
            },
        };
        let bytes = encode_request(&request).expect("encode");
        let back = decode_request(&bytes).unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_eq!(back, request, "round {round}");
    }
}

#[test]
fn random_responses_round_trip() {
    let mut rng = rng_from_seed(0xABCD_0004);
    let codes = [
        ErrorCode::Busy,
        ErrorCode::Malformed,
        ErrorCode::UnsupportedVersion,
        ErrorCode::InvalidKernel,
        ErrorCode::QueueFull,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
    ];
    for round in 0..ROUNDS {
        let response = match rng.gen_range(0..4u32) {
            0 => Response::Pong {
                token: rng.gen::<u64>(),
            },
            1 => Response::JobResult {
                request_id: rng.gen::<u64>(),
                outcome: random_outcome(&mut rng),
            },
            2 => Response::CancelResult {
                request_id: rng.gen::<u64>(),
                cancelled: rng.gen_range(0..2u32) == 1,
            },
            _ => Response::Error {
                request_id: rng.gen::<u64>(),
                code: codes[rng.gen_range(0..codes.len())],
                message: random_string(&mut rng, 60),
            },
        };
        let bytes = encode_response(&response).expect("encode");
        let back = decode_response(&bytes).unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_eq!(back, response, "round {round}");
    }
}

#[test]
fn framed_round_trip_and_every_truncation_errors() {
    let sat = planted_3sat(10, 3.5, 11).unwrap();
    let payload = encode_request(&Request::Submit {
        request_id: 5,
        timeout_ms: Some(1_000),
        seed: Some(99),
        policy: Some(DispatchPolicy::DeadlineAware),
        kernel: Kernel::SolveSat {
            formula: sat.formula,
        },
    })
    .unwrap();
    let mut framed = Vec::new();
    write_frame(&mut framed, &payload).unwrap();
    // Intact: reads back exactly.
    assert_eq!(read_frame(&mut framed.as_slice()).unwrap(), payload);
    // Truncated at every byte boundary: an error, never a panic or hang.
    for cut in 0..framed.len() {
        let err = read_frame(&mut &framed[..cut]).expect_err("truncated frame must fail");
        assert!(
            matches!(err, WireError::Io(_)),
            "cut {cut}: unexpected {err}"
        );
    }
}

#[test]
fn oversized_length_prefix_rejected_before_allocation() {
    // A frame header claiming u32::MAX bytes must be refused outright —
    // the reader must not trust the attacker-supplied length.
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&MAGIC);
    hostile.extend_from_slice(&u32::MAX.to_be_bytes());
    match read_frame(&mut hostile.as_slice()) {
        Err(WireError::TooLarge { len, max, .. }) => {
            assert_eq!(len, u64::from(u32::MAX));
            assert_eq!(max, u64::from(MAX_FRAME_LEN));
        }
        other => panic!("unexpected {other:?}"),
    }
    // Just over the limit fails the same way; exactly at it is only an
    // I/O error because the body bytes are not there.
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&MAGIC);
    hostile.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
    assert!(matches!(
        read_frame(&mut hostile.as_slice()),
        Err(WireError::TooLarge { .. })
    ));
}

#[test]
fn bad_magic_rejected() {
    let payload = encode_request(&Request::Ping { token: 1 }).unwrap();
    let mut framed = Vec::new();
    write_frame(&mut framed, &payload).unwrap();
    framed[0] = b'X';
    match read_frame(&mut framed.as_slice()) {
        Err(WireError::BadMagic { found }) => assert_eq!(&found[1..], &MAGIC[1..]),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn wrong_version_ranges_refuse_negotiation() {
    // Only-newer and only-older clients both fail; overlapping ranges
    // settle on the highest common version.
    assert_eq!(negotiate(PROTOCOL_VERSION + 1, u16::MAX), None);
    if MIN_SUPPORTED_VERSION > 0 {
        assert_eq!(negotiate(0, MIN_SUPPORTED_VERSION - 1), None);
    }
    assert_eq!(
        negotiate(MIN_SUPPORTED_VERSION, u16::MAX),
        Some(PROTOCOL_VERSION)
    );
}

#[test]
fn random_byte_fuzz_never_panics() {
    let mut rng = rng_from_seed(0xFEED_FACE);
    for _ in 0..512 {
        let len = rng.gen_range(0..96usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256u32) as u8).collect();
        // Outcomes may be Ok (a short prefix can be a valid message) or
        // Err; the only failure mode is a panic, which the harness
        // catches.
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        let _ = decode_kernel(&bytes);
        let _ = decode_kernel_result(&bytes);
        let _ = read_frame(&mut bytes.as_slice());
    }
}

#[test]
fn corrupted_valid_frames_never_panic() {
    // Take a structurally valid encoded request and flip every single
    // byte through a few values: decode must never panic.
    let mut rng = rng_from_seed(0xC0FF_EE00);
    let base = encode_request(&Request::Submit {
        request_id: 1,
        timeout_ms: Some(10),
        seed: None,
        policy: Some(DispatchPolicy::MinPredictedLatency),
        kernel: random_kernel(&mut rng),
    })
    .unwrap();
    for pos in 0..base.len() {
        for delta in [1u8, 0x7F, 0xFF] {
            let mut corrupted = base.clone();
            corrupted[pos] = corrupted[pos].wrapping_add(delta);
            let _ = decode_request(&corrupted);
        }
    }
}

#[test]
fn v1_submit_round_trips_against_v2_build() {
    // A v1 peer's Submit has no policy byte; a server that negotiated
    // the link down to v1 must decode it unchanged.
    let mut rng = rng_from_seed(0xBEEF_0001);
    for round in 0..ROUNDS {
        let request = Request::Submit {
            request_id: rng.gen::<u64>(),
            timeout_ms: Some(rng.gen::<u64>()),
            seed: Some(rng.gen::<u64>()),
            policy: None,
            kernel: random_kernel(&mut rng),
        };
        let v1_bytes = encode_request_v(&request, 1).expect("v1 encode");
        let back = decode_request_v(&v1_bytes, 1).unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_eq!(back, request, "round {round}");
    }
}

#[test]
fn v1_encode_rejects_policy_override() {
    let request = Request::Submit {
        request_id: 3,
        timeout_ms: None,
        seed: None,
        policy: Some(DispatchPolicy::MinPredictedEnergy),
        kernel: Kernel::Factor { n: 21 },
    };
    assert!(matches!(
        encode_request_v(&request, 1),
        Err(WireError::Invalid { .. })
    ));
}

#[test]
fn out_of_range_policy_byte_rejected() {
    let valid = encode_request(&Request::Submit {
        request_id: 9,
        timeout_ms: None,
        seed: None,
        policy: Some(DispatchPolicy::CpuOnly),
        kernel: Kernel::Factor { n: 35 },
    })
    .unwrap();
    // Layout: tag(1) + request_id(8) + opt timeout(1) + opt seed(1), then
    // the policy byte. Values 0..=5 are defined; everything above must
    // fail with UnknownTag, never misparse into a kernel.
    let policy_pos = 1 + 8 + 1 + 1;
    for bad in [6u8, 7, 42, 0xFF] {
        let mut corrupted = valid.clone();
        corrupted[policy_pos] = bad;
        assert!(
            matches!(
                decode_request(&corrupted),
                Err(WireError::UnknownTag {
                    context: "dispatch policy",
                    ..
                })
            ),
            "policy byte {bad} must be rejected"
        );
    }
}

#[test]
fn policy_byte_fuzz_decodes_or_errors_cleanly() {
    // Fuzz every value of the new v2 policy byte inside an otherwise
    // valid frame: each decode either succeeds (0..=5) or errors; the
    // successful ones must round-trip to one of the six defined states.
    let valid = encode_request(&Request::Submit {
        request_id: 1,
        timeout_ms: None,
        seed: None,
        policy: None,
        kernel: Kernel::Compare { x: 0.5, y: 0.5 },
    })
    .unwrap();
    let policy_pos = 1 + 8 + 1 + 1;
    let mut decoded = 0;
    for byte in 0..=255u8 {
        let mut frame = valid.clone();
        frame[policy_pos] = byte;
        match decode_request(&frame) {
            Ok(Request::Submit { policy, .. }) => {
                decoded += 1;
                let reencoded = encode_request(&Request::Submit {
                    request_id: 1,
                    timeout_ms: None,
                    seed: None,
                    policy,
                    kernel: Kernel::Compare { x: 0.5, y: 0.5 },
                })
                .unwrap();
                assert_eq!(reencoded, frame, "policy byte {byte} must round-trip");
            }
            Ok(other) => panic!("policy byte {byte} decoded as {other:?}"),
            Err(_) => {}
        }
    }
    assert_eq!(decoded, 6, "exactly the six defined policy codes decode");
}
